package experiments

import "testing"

func TestAblationVaultsMonotoneAndSaturating(t *testing.T) {
	rows := AblationVaults(quick)
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup-1e-9 {
			t.Errorf("speedup not monotone: %d vaults %.2fx -> %d vaults %.2fx",
				rows[i-1].Vaults, rows[i-1].Speedup, rows[i].Vaults, rows[i].Speedup)
		}
	}
	// Saturation at the logic-layer bandwidth ceiling: the last doubling
	// (32->64) must gain much less than the first (1->2).
	gainEarly := rows[1].Speedup / rows[0].Speedup
	gainLate := rows[6].Speedup / rows[5].Speedup
	if gainLate >= gainEarly*0.75 {
		t.Errorf("no bandwidth-ceiling saturation: early gain %.2f, late gain %.2f", gainEarly, gainLate)
	}
	t.Logf("vault sweep: 1->%.2fx, 16->%.2fx, 64->%.2fx", rows[0].Speedup, rows[4].Speedup, rows[6].Speedup)
}

func TestAblationBandwidthSaturates(t *testing.T) {
	rows := AblationBandwidth(quick)
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup-1e-9 {
			t.Error("more bandwidth must never slow the kernel down")
		}
	}
	// Doubling beyond Table 1's 256 GB/s should barely help: the kernel is
	// bound elsewhere by then.
	var at256, at512 float64
	for _, r := range rows {
		if r.GBs == 256 {
			at256 = r.Speedup
		}
		if r.GBs == 512 {
			at512 = r.Speedup
		}
	}
	if at512 > at256*1.2 {
		t.Errorf("512 GB/s gives %.2fx vs %.2fx at 256; expected saturation", at512, at256)
	}
}

func TestAblationCoherenceGrowsWithSharing(t *testing.T) {
	rows := AblationCoherence(quick)
	if rows[0].SharedFraction != 0 || rows[0].EnergyOverhead > 1e-6 {
		t.Errorf("zero sharing should cost nothing: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EnergyOverhead < rows[i-1].EnergyOverhead {
			t.Error("coherence overhead must grow with the shared fraction")
		}
	}
	// At the paper's fine-grained operating point (1%), overhead is small.
	if rows[1].SharedFraction == 0.01 && rows[1].EnergyOverhead > 0.05 {
		t.Errorf("1%% sharing costs %.1f%% energy; the paper's scheme assumes this is negligible",
			rows[1].EnergyOverhead*100)
	}
}

func TestAblationAccEfficiencySaturates(t *testing.T) {
	rows := AblationAccEfficiency(quick)
	for i := 1; i < len(rows); i++ {
		if rows[i].EnergyReduction < rows[i-1].EnergyReduction {
			t.Error("a more efficient accelerator must never increase energy")
		}
	}
	// The 40x->80x step buys almost nothing: data movement dominates.
	d4080 := rows[4].EnergyReduction - rows[3].EnergyReduction
	d510 := rows[1].EnergyReduction - rows[0].EnergyReduction
	if d4080 > d510 {
		t.Errorf("efficiency gains do not saturate: 5->10x gains %.3f, 40->80x gains %.3f", d510, d4080)
	}
}

func TestBatteryLife(t *testing.T) {
	if testing.Short() {
		t.Skip("full battery-life sweep (~17s, minutes under -race); skipped with -short")
	}
	rows := BatteryLife(quick)
	if len(rows) != 4 {
		t.Fatalf("got %d scenarios", len(rows))
	}
	for _, r := range rows {
		if r.LifeExtension <= 1.0 {
			t.Errorf("%s: life extension %.2fx; PIM savings must extend battery life", r.Scenario, r.LifeExtension)
		}
		if r.LifeExtension > 2.0 {
			t.Errorf("%s: life extension %.2fx implausibly high (rest of device unaffected)", r.Scenario, r.LifeExtension)
		}
		t.Logf("%-20s share %.0f%% reduction %.0f%% -> %.2fx battery life", r.Scenario, r.Share*100, r.Reduction*100, r.LifeExtension)
	}
}
